// Command dsgen generates and inspects the synthetic social-network data
// sets that stand in for the paper's SNAP snapshots (Table II).
//
// Usage:
//
//	dsgen -dataset facebook -n 4000                  # print statistics
//	dsgen -dataset twitter -n 10000 -edges out.txt   # also dump edge list
//	dsgen -all                                       # Table II for all four
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"selectps/internal/datasets"
	"selectps/internal/socialgraph"
)

func main() {
	var (
		name  = flag.String("dataset", "facebook", "data set: facebook|twitter|slashdot|gplus")
		n     = flag.Int("n", 0, "number of users (default: data set's DefaultScale)")
		seed  = flag.Int64("seed", 1, "generator seed")
		edges = flag.String("edges", "", "write the edge list (one 'u v' per line) to this file")
		all   = flag.Bool("all", false, "print statistics for all four data sets")
	)
	flag.Parse()

	if *all {
		for _, spec := range datasets.All() {
			size := *n
			if size <= 0 {
				size = spec.DefaultScale
			}
			g := spec.Generate(size, *seed)
			fmt.Println(datasets.Measure(spec.Name, g))
		}
		return
	}

	spec, err := datasets.ByName(*name)
	if err != nil {
		fatal(err)
	}
	size := *n
	if size <= 0 {
		size = spec.DefaultScale
	}
	g := spec.Generate(size, *seed)
	st := datasets.Measure(spec.Name, g)
	fmt.Println(st)
	fmt.Printf("paper: users=%d connections=%d avgDegree=%.3f\n",
		spec.PaperUsers, spec.PaperConnections, spec.PaperAvgDegree)
	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("avg clustering (sampled): %.3f\n", g.AverageClustering(500, rng))
	_, comps := g.ConnectedComponents()
	fmt.Printf("connected components: %d\n", comps)

	if *edges != "" {
		if err := writeEdges(g, *edges); err != nil {
			fatal(err)
		}
		fmt.Printf("edge list written to %s\n", *edges)
	}
}

func writeEdges(g *socialgraph.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if int32(u) < v {
				fmt.Fprintf(w, "%d %d\n", u, v)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsgen:", err)
	os.Exit(2)
}
