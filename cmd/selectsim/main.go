// Command selectsim runs the paper-reproduction experiments: every table
// and figure of the evaluation section (§IV) plus the ablation study.
//
// Usage:
//
//	selectsim -exp fig2                        # one experiment
//	selectsim -exp all -trials 5 -sizes 500,1000,2000,4000
//	selectsim -exp fig6 -dataset facebook -n 1500 -steps 600
//
// Experiments: table2, linksweep, fig2, fig3, fig4, fig5, fig6, simul,
// fig7, fig8, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/experiments"
	"selectps/internal/metrics"
	"selectps/internal/pubsub"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table2|linksweep|fig2|fig3|fig4|fig5|fig6|simul|fig7|fig8|ablation|summary|all")
		dataset = flag.String("dataset", "", "restrict to one data set: facebook|twitter|slashdot|gplus")
		sizes   = flag.String("sizes", "", "comma-separated network sizes for growth sweeps (default 500,1000,2000)")
		trials  = flag.Int("trials", 0, "independent trials per point (default 3; paper uses 100)")
		samples = flag.Int("samples", 0, "lookups/publications sampled per trial (default 150)")
		seed    = flag.Int64("seed", 1, "base seed")
		n       = flag.Int("n", 0, "network size for fixed-size experiments (fig4..fig8, ablation)")
		steps   = flag.Int("steps", 0, "churn steps for fig6 (default 300)")
		systems = flag.String("systems", "", "comma-separated systems (default all five)")
	)
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Samples: *samples, Seed: *seed}
	if *dataset != "" {
		ds, err := datasets.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		opt.Datasets = []datasets.Spec{ds}
	}
	if *sizes != "" {
		for _, tok := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fatal(fmt.Errorf("bad -sizes entry %q", tok))
			}
			opt.Sizes = append(opt.Sizes, v)
		}
	}
	if *systems != "" {
		for _, tok := range strings.Split(*systems, ",") {
			opt.Systems = append(opt.Systems, pubsub.Kind(strings.TrimSpace(tok)))
		}
	}

	run := func(name string, f func()) {
		start := time.Now()
		fmt.Printf("== %s ==\n", name)
		f()
		fmt.Printf("-- %s done in %s --\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	printTables := func(tabs []*metrics.Table) {
		for _, t := range tabs {
			fmt.Println(t)
		}
	}

	all := map[string]func(){
		"table2": func() {
			fmt.Print(experiments.FormatTable2(experiments.Table2(opt, *n)))
		},
		"linksweep": func() { fmt.Println(experiments.LinkSweep(opt, *n, nil)) },
		"fig2":      func() { printTables(experiments.Fig2Hops(opt)) },
		"fig3":      func() { printTables(experiments.Fig3Relays(opt)) },
		"fig4":      func() { printTables(experiments.Fig4Load(opt, *n)) },
		"fig5":      func() { fmt.Println(experiments.Fig5Convergence(opt, *n)) },
		"fig6":      func() { printTables(experiments.Fig6Churn(opt, *n, *steps)) },
		"simul":     func() { fmt.Println(experiments.SimultaneousTransfers(opt, nil)) },
		"fig7":      func() { printTables(experiments.Fig7Latency(opt)) },
		"fig8":      func() { printTables(experiments.Fig8IDs(opt, *n)) },
		"ablation":  func() { fmt.Println(experiments.Ablations(opt, *n)) },
		"summary":   func() { fmt.Print(experiments.Summary(opt)) },
	}
	if *exp == "all" {
		for _, name := range []string{"table2", "linksweep", "fig2", "fig3", "fig4",
			"fig5", "fig6", "simul", "fig7", "fig8", "ablation"} {
			run(name, all[name])
		}
		return
	}
	f, ok := all[*exp]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	run(*exp, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selectsim:", err)
	os.Exit(2)
}
