// Command overlayprobe builds one overlay and inspects it interactively
// from the command line: lookups between peers, a publisher's routing
// tree, and per-peer state — useful when studying how the systems differ
// on a concrete network.
//
// Usage:
//
//	overlayprobe -system select -dataset facebook -n 800 -route 3:100
//	overlayprobe -system symphony -n 500 -publish 42
//	overlayprobe -system select -n 500 -peer 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
)

func main() {
	var (
		system  = flag.String("system", "select", "system: select|symphony|bayeux|vitis|omen")
		name    = flag.String("dataset", "facebook", "data set shape")
		n       = flag.Int("n", 800, "number of peers")
		seed    = flag.Int64("seed", 1, "seed")
		route   = flag.String("route", "", "route between two peers, 'src:dst'")
		publish = flag.Int("publish", -1, "build and describe the routing tree of this publisher")
		peer    = flag.Int("peer", -1, "describe one peer (position, links, degree)")
	)
	flag.Parse()

	spec, err := datasets.ByName(*name)
	if err != nil {
		fatal(err)
	}
	g := spec.Generate(*n, *seed)
	o, err := pubsub.Build(pubsub.Kind(*system), g, pubsub.BuildOptions{}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("built %s over %s: %d peers, %d social edges\n",
		o.Name(), spec.Name, o.N(), g.NumEdges())
	if it, ok := o.(overlay.Iterative); ok {
		fmt.Printf("construction iterations: %d\n", it.Iterations())
	}

	switch {
	case *route != "":
		parts := strings.SplitN(*route, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-route wants 'src:dst'"))
		}
		src, err1 := strconv.Atoi(parts[0])
		dst, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || src < 0 || dst < 0 || src >= *n || dst >= *n {
			fatal(fmt.Errorf("bad -route %q", *route))
		}
		path, ok := overlay.RouteOn(o, overlay.PeerID(src), overlay.PeerID(dst))
		fmt.Printf("route %d -> %d: ok=%v hops=%d path=%v\n", src, dst, ok, path.Hops(), path)
		fmt.Printf("socially connected: %v\n", g.HasEdge(int32(src), int32(dst)))

	case *publish >= 0:
		if *publish >= *n {
			fatal(fmt.Errorf("publisher %d out of range", *publish))
		}
		b := overlay.PeerID(*publish)
		d := pubsub.Publish(o, g, b)
		fmt.Printf("publisher %d: %d subscribers, %d delivered, tree size %d, relay nodes %d, max depth %d\n",
			b, d.Subscribers, d.Delivered, d.TreeSize, d.RelayNodes, d.MaxDepth)
		fmt.Printf("forwarding peers: %d\n", len(d.Forwards))

	case *peer >= 0:
		if *peer >= *n {
			fatal(fmt.Errorf("peer %d out of range", *peer))
		}
		p := overlay.PeerID(*peer)
		fmt.Printf("peer %d: position=%.6f social degree=%d overlay links=%d online=%v\n",
			p, float64(o.Position(p)), g.Degree(p), len(o.Links(p)), o.Online(p))
		fmt.Printf("links: %v\n", o.Links(p))

	default:
		// Summary: average degree of the overlay and a few sample lookups.
		totalLinks := 0
		for p := 0; p < *n; p++ {
			totalLinks += len(o.Links(overlay.PeerID(p)))
		}
		fmt.Printf("avg overlay out-degree: %.1f\n", float64(totalLinks)/float64(*n))
		rng := rand.New(rand.NewSource(*seed + 1))
		hops, okCount := 0, 0
		for i := 0; i < 50; i++ {
			u, v, ok := g.RandomEdge(rng)
			if !ok {
				break
			}
			if path, ok := overlay.RouteOn(o, u, v); ok {
				hops += path.Hops()
				okCount++
			}
		}
		if okCount > 0 {
			fmt.Printf("avg hops between sampled friends: %.2f (%d/50 lookups ok)\n",
				float64(hops)/float64(okCount), okCount)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overlayprobe:", err)
	os.Exit(2)
}
