// Command livebench runs the "realistic experiment" end to end on live
// peers: it builds a SELECT overlay, starts one goroutine per peer on an
// in-memory transport with netmodel-emulated pairwise latency (or real TCP
// loopback sockets with -tcp), drives the exponential posting workload,
// and reports delivery latency percentiles, hop distribution and delivery
// completeness.
//
//	livebench -n 300 -posts 100
//	livebench -n 100 -posts 40 -tcp
//
// With -throughput N the latency experiment is replaced by a sustained
// data-plane flood: N publications are driven back to back with no
// per-publication await, and the run reports delivered notifications per
// second, delivery-latency percentiles, and heap allocations per
// delivered notification (-json for machine-readable output).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/metrics"
	"selectps/internal/netmodel"
	"selectps/internal/node"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/socialgraph"
	"selectps/internal/transport"
)

func main() {
	var (
		n       = flag.Int("n", 300, "number of live peers")
		posts   = flag.Int("posts", 100, "publications to drive")
		name    = flag.String("dataset", "facebook", "data set shape")
		seed    = flag.Int64("seed", 1, "seed")
		useTCP  = flag.Bool("tcp", false, "real TCP loopback sockets instead of in-memory transport")
		timeout = flag.Duration("timeout", 10*time.Second, "per-publication delivery timeout")
		thrN    = flag.Int("throughput", 0, "sustained-throughput mode: flood this many publications instead of the latency experiment")
		jsonOut = flag.Bool("json", false, "emit throughput results as JSON on stdout")
		buffer  = flag.Int("buffer", 4096, "per-peer transport mailbox depth")
		shards  = flag.Int("shards", 0, "event-loop shards (0 = GOMAXPROCS)")
		hbEvery = flag.Duration("heartbeat", 200*time.Millisecond, "heartbeat interval")
		gsEvery = flag.Duration("gossip", 200*time.Millisecond, "gossip exchange interval")
		mtEvery = flag.Duration("maintain", 200*time.Millisecond, "maintenance interval")
		gate    = flag.Bool("gate", false, "fail (exit 1) when live goroutines exceed the 4×shards+conns budget after the run")
		retry   = flag.Duration("retry", 0, "publisher retry backoff base (0 disables autonomous delivery repair)")
		inboxOn = flag.Bool("inbox", false, "durable delivery tier: deposit publications for unreachable subscribers instead of dead-lettering (implies -retry 50ms when unset)")
		topics  = flag.Int("topics", 0, "named-topic mode: publish to this many rendezvous-placed topics instead of friend feeds (throughput mode only; implies -retry 50ms when unset)")
		zipfS   = flag.Float64("zipf", 1.2, "Zipf exponent for topic popularity in -topics mode (>1)")
		ackMode = flag.String("ackbatch", "auto", "ack coalescing: auto (on for raw TCP), on, off")
		hbPiggy = flag.Bool("hbpiggyback", true, "suppress heartbeats on links with recent traffic")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if (*inboxOn || *topics > 0) && *retry == 0 {
		*retry = 50 * time.Millisecond
	}
	var ackBatch node.AckBatchMode
	switch *ackMode {
	case "auto":
		ackBatch = node.AckBatchAuto
	case "on":
		ackBatch = node.AckBatchOn
	case "off":
		ackBatch = node.AckBatchOff
	default:
		fatal(fmt.Errorf("-ackbatch must be auto, on or off (got %q)", *ackMode))
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "livebench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "livebench: memprofile:", err)
			}
			f.Close()
		}()
	}

	spec, err := datasets.ByName(*name)
	if err != nil {
		fatal(err)
	}
	g := spec.Generate(*n, *seed)
	net := netmodel.New(*n, netmodel.Config{}, rand.New(rand.NewSource(*seed+1)))
	bw := make([]float64, *n)
	for i := range bw {
		bw[i] = net.Upload(overlay.PeerID(i))
	}
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}

	met := obs.New()
	var tr transport.Transport
	if *useTCP {
		t, err := transport.NewTCP(*n, *buffer)
		if err != nil {
			fatal(err)
		}
		t.Obs = met // transport-side counters (frames sent, ingress batches)
		tr = t
	} else {
		sw := transport.NewSwitchboard(*n, *buffer)
		sw.Latency = func(from, to int32) time.Duration {
			// Emulated propagation latency, scaled down 10x so runs finish
			// quickly while preserving relative differences.
			return time.Duration(net.Latency(from, to) * float64(time.Second) / 10)
		}
		sw.Obs = met
		tr = sw
	}
	cluster, err := node.Start(node.Options{
		Graph: g, Overlay: ov, Transport: tr, Seed: *seed, Obs: met,
		Shards:               *shards,
		HeartbeatEvery:       *hbEvery,
		GossipEvery:          *gsEvery,
		MaintainEvery:        *mtEvery,
		RetryBase:            *retry,
		Inbox:                *inboxOn,
		Bandwidths:           bw,
		AckBatch:             ackBatch,
		NoHeartbeatPiggyback: !*hbPiggy,
		// -buffer sizes the shard mailboxes too: the muxed runtime
		// replaces per-peer inboxes with one shared channel per shard,
		// so a per-peer depth alone would silently shrink total
		// buffering by the peers-per-shard factor.
		ShardMailbox: *buffer,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		cluster.Shutdown(ctx)
	}()
	kind := "in-memory+latency"
	if *useTCP {
		kind = "tcp"
	}
	banner := os.Stdout
	if *jsonOut {
		banner = os.Stderr // keep stdout clean for the JSON document
	}
	fmt.Fprintf(banner, "live cluster: %d peers (%s transport), %s graph, %d friendships\n",
		*n, kind, spec.Name, g.NumEdges())

	if *thrN > 0 {
		runThroughput(cluster, g, met, throughputConfig{
			posts: *thrN, kind: kind, peers: *n, jsonOut: *jsonOut,
			topics: *topics, zipfS: *zipfS, seed: *seed,
		})
		checkGate(cluster, tr, *gate, banner)
		return
	}

	w := pubsub.NewWorkload(g, 10, rand.New(rand.NewSource(*seed+2)))
	var latencies []float64
	hops := metrics.NewHistogram(0, 16, 16)
	done, wanted, delivered := 0, 0, 0
	for tick := 0; done < *posts; tick++ {
		for _, b := range w.PostersUntil(float64(tick), 1) {
			if g.Degree(b) == 0 {
				continue
			}
			subs := g.Neighbors(b)
			start := time.Now()
			seq, _ := cluster.Nodes[b].Topic(node.UserTopic(b)).Publish(nil, node.WithSize(1_200_000))
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			got, _ := cluster.AwaitDelivery(ctx, b, seq, subs)
			cancel()
			latencies = append(latencies, time.Since(start).Seconds())
			wanted += len(subs)
			delivered += got
			for _, s := range subs {
				if h, ok := cluster.Nodes[s].Received(b, seq); ok {
					hops.Add(float64(h))
				}
			}
			done++
			if done >= *posts {
				break
			}
		}
	}

	fmt.Printf("\npublications: %d   notifications delivered: %d/%d (%.2f%%)\n",
		done, delivered, wanted, 100*float64(delivered)/float64(wanted))
	fmt.Printf("delivery wall-clock per publication: p50=%.1fms p90=%.1fms p99=%.1fms\n",
		metrics.Quantile(latencies, 0.5)*1000,
		metrics.Quantile(latencies, 0.9)*1000,
		metrics.Quantile(latencies, 0.99)*1000)
	fmt.Println("hop distribution of deliveries:")
	fr := hops.Fractions()
	for h, f := range fr {
		if f > 0.001 {
			fmt.Printf("  %2d hops: %5.1f%%\n", h, f*100)
		}
	}
	checkGate(cluster, tr, *gate, banner)
}

// checkGate prints the runtime-scale summary — S shard loops plus
// per-connection transport goroutines is the whole goroutine budget of
// the sharded runtime (DESIGN.md §11) — and, with -gate, fails the run
// when the live count exceeds 4×shards+conns. The 4× slack on the shard
// term covers the main goroutine, runtime helpers, and transient timer
// goroutines; a per-node goroutine leak blows through it immediately at
// any realistic n.
func checkGate(cluster *node.Cluster, tr transport.Transport, gate bool, banner *os.File) {
	live := runtime.NumGoroutine()
	budget := 4 * cluster.Shards()
	switch t := tr.(type) {
	case *transport.TCP:
		budget += t.ConnGoroutines()
	case *transport.Switchboard:
		// Emulated latency holds one pending timer per in-flight
		// message; each becomes a short-lived goroutine at fire time.
		budget += t.InFlight()
	}
	fmt.Fprintf(banner, "runtime: %d shards, %d live goroutines (budget %d)\n",
		cluster.Shards(), live, budget)
	if gate && live > budget {
		fmt.Fprintf(os.Stderr, "livebench: goroutine budget exceeded: %d live > %d (4×%d shards + conns)\n",
			live, budget, cluster.Shards())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		cluster.Shutdown(ctx)
		os.Exit(1)
	}
}

// throughputResult is the machine-readable summary of one -throughput run.
type throughputResult struct {
	Mode           string  `json:"mode"`
	Transport      string  `json:"transport"`
	Peers          int     `json:"peers"`
	Publications   int     `json:"publications"`
	Notifications  int64   `json:"notifications_expected"`
	Delivered      int64   `json:"notifications_delivered"`
	DeliveredPct   float64 `json:"delivered_pct"`
	ElapsedSeconds float64 `json:"elapsed_s"`
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	AllocsPerMsg   float64 `json:"allocs_per_msg"`
	BytesPerMsg    float64 `json:"bytes_per_msg"`
	// FramesPerDelivered is transport sends over the flood window divided
	// by delivered notifications — the frame-economy figure of merit
	// (DESIGN.md §15): control-traffic coalescing pushes it down without
	// touching the delivered count.
	FramesPerDelivered float64          `json:"frames_per_delivered_msg"`
	FrameCounters      map[string]int64 `json:"frame_counters,omitempty"`
	Shards             int              `json:"shards"`
	Goroutines         int              `json:"goroutines"`
	// Topic-mode fields: how many named topics the flood targeted, the
	// Zipf popularity exponent, and the runtime's topic_* counters.
	Topics        int              `json:"topics,omitempty"`
	ZipfS         float64          `json:"zipf_s,omitempty"`
	TopicCounters map[string]int64 `json:"topic_counters,omitempty"`
	// Delivery-guarantee accounting: publications that exhausted their
	// retry budget with nowhere to deposit, total and per publisher node
	// (only nodes with a nonzero count appear).
	DeadLetters       int64       `json:"dead_letters"`
	DeadLettersByNode map[int]int `json:"dead_letters_by_node,omitempty"`
}

// deadLetterCensus totals the per-node dead-letter records after a run.
func deadLetterCensus(cluster *node.Cluster) (int64, map[int]int) {
	var total int64
	byNode := make(map[int]int)
	for i := range cluster.Nodes {
		if n := len(cluster.Nodes[i].DeadLetters()); n > 0 {
			byNode[i] = n
			total += int64(n)
		}
	}
	if len(byNode) == 0 {
		byNode = nil
	}
	return total, byNode
}

// throughputConfig parameterizes one -throughput run.
type throughputConfig struct {
	posts   int
	kind    string
	peers   int
	jsonOut bool
	topics  int     // >0: named-topic mode
	zipfS   float64 // topic-popularity exponent
	seed    int64
}

// runThroughput floods posts publications across the highest-degree
// publishers with no per-publication await, then waits for deliveries to
// settle. Throughput is delivered notifications over the whole window
// (flood + drain), latency is publish-to-OnDeliver wall clock per
// notification, and allocations are the process-wide heap delta divided
// by deliveries — an end-to-end number that includes the node runtime,
// codec, and transport. With cfg.topics > 0 the flood targets named
// topics with Zipf-distributed popularity instead of friend feeds:
// every peer subscribes to two Zipf-drawn topics and each publication
// lands on a Zipf-drawn topic's rendezvous tree.
func runThroughput(cluster *node.Cluster, g *socialgraph.Graph, met *obs.Metrics, cfg throughputConfig) {
	posts, kind, peers, jsonOut := cfg.posts, cfg.kind, cfg.peers, cfg.jsonOut
	// Publishers: the four best-connected peers, round-robin.
	ids := make([]overlay.PeerID, 0, peers)
	for i := 0; i < peers; i++ {
		if g.Degree(overlay.PeerID(i)) > 0 {
			ids = append(ids, overlay.PeerID(i))
		}
	}
	sort.Slice(ids, func(a, b int) bool { return g.Degree(ids[a]) > g.Degree(ids[b]) })
	if len(ids) > 4 {
		ids = ids[:4]
	}
	if len(ids) == 0 {
		fatal(fmt.Errorf("graph has no connected peers"))
	}

	var (
		mu        sync.Mutex
		starts    = make(map[uint64]time.Time, posts)
		latencies []float64
		delivered int64
	)
	const maxSamples = 1 << 18
	for i := range cluster.Nodes {
		cluster.Nodes[i].OnDeliver(func(d node.Delivery) {
			now := time.Now()
			key := uint64(uint32(d.Publisher))<<32 | uint64(d.Seq)
			mu.Lock()
			if t0, ok := starts[key]; ok && len(latencies) < maxSamples {
				latencies = append(latencies, now.Sub(t0).Seconds()*1000)
			}
			delivered++
			mu.Unlock()
		})
	}

	// Topic mode: register every peer on two Zipf-drawn topics, and
	// pre-draw the per-publication topic choices from the same law.
	var topicNames []string
	var subsOf map[string]map[overlay.PeerID]bool
	var pubTopic []int
	if cfg.topics > 0 {
		rng := rand.New(rand.NewSource(cfg.seed + 7))
		zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.topics-1))
		topicNames = make([]string, cfg.topics)
		for i := range topicNames {
			topicNames[i] = fmt.Sprintf("#topic-%d", i)
		}
		subsOf = make(map[string]map[overlay.PeerID]bool, cfg.topics)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		for i := range cluster.Nodes {
			p := overlay.PeerID(i)
			for k := 0; k < 2; k++ {
				name := topicNames[zipf.Uint64()]
				if subsOf[name][p] {
					continue
				}
				if _, err := cluster.Nodes[i].Topic(name).Subscribe(ctx); err != nil {
					fatal(fmt.Errorf("subscribe %d to %s: %w", i, name, err))
				}
				if subsOf[name] == nil {
					subsOf[name] = make(map[overlay.PeerID]bool)
				}
				subsOf[name][p] = true
			}
		}
		cancel()
		pubTopic = make([]int, posts)
		for i := range pubTopic {
			pubTopic[i] = int(zipf.Uint64())
		}
	}

	// Closed-loop flood: cap the notifications in flight so the cluster is
	// saturated but not collapsed — the steady state measures the drain
	// rate of the data plane, and both deliver close to 100%.
	const maxOutstanding = 16384
	var wanted int64
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	frames0 := met.Get(obs.CTransportSend)
	start := time.Now()
	for i := 0; i < posts; i++ {
		b := ids[i%len(ids)]
		for {
			mu.Lock()
			outstanding := wanted - delivered
			mu.Unlock()
			if outstanding < maxOutstanding {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		if cfg.topics > 0 {
			name := topicNames[pubTopic[i]]
			subs := subsOf[name]
			expect := int64(len(subs))
			if subs[b] {
				expect-- // the publisher's own copy is not a notification
			}
			wanted += expect
			mu.Lock()
			seq, err := cluster.Nodes[b].Topic(name).Publish(nil, node.WithSize(1_200_000))
			if err == nil {
				starts[uint64(uint32(b))<<32|uint64(seq)] = time.Now()
			}
			mu.Unlock()
			if err != nil {
				fatal(fmt.Errorf("topic publish: %w", err))
			}
			continue
		}
		wanted += int64(g.Degree(b))
		// Publish under mu so a delivery can never observe its own key
		// before the start time is recorded.
		mu.Lock()
		seq, _ := cluster.Nodes[b].Topic(node.UserTopic(b)).Publish(nil, node.WithSize(1_200_000))
		starts[uint64(uint32(b))<<32|uint64(seq)] = time.Now()
		mu.Unlock()
	}
	// Drain: settled when the delivery count stops moving for a second.
	var last int64
	lastChange := time.Now()
	for time.Since(start) < 120*time.Second {
		mu.Lock()
		cur := delivered
		mu.Unlock()
		if cur != last {
			last, lastChange = cur, time.Now()
		} else if cur >= wanted || time.Since(lastChange) > time.Second {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start) - time.Since(lastChange) // stop the clock at the last delivery
	runtime.ReadMemStats(&m1)

	mu.Lock()
	res := throughputResult{
		Mode: "throughput", Transport: kind, Peers: peers,
		Publications: posts, Notifications: wanted, Delivered: delivered,
		ElapsedSeconds: elapsed.Seconds(),
		Shards:         cluster.Shards(),
		Goroutines:     runtime.NumGoroutine(),
	}
	if wanted > 0 {
		res.DeliveredPct = 100 * float64(delivered) / float64(wanted)
	}
	if elapsed > 0 {
		res.MsgsPerSec = float64(delivered) / elapsed.Seconds()
	}
	res.LatencyP50MS = metrics.Quantile(latencies, 0.5)
	res.LatencyP99MS = metrics.Quantile(latencies, 0.99)
	if delivered > 0 {
		res.AllocsPerMsg = float64(m1.Mallocs-m0.Mallocs) / float64(delivered)
		res.BytesPerMsg = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(delivered)
		res.FramesPerDelivered = float64(met.Get(obs.CTransportSend)-frames0) / float64(delivered)
	}
	mu.Unlock()
	res.FrameCounters = map[string]int64{}
	for _, c := range []obs.Counter{
		obs.CAckBatchSent, obs.CAckCoalesced, obs.CAckTTLDrop,
		obs.CHeartbeatSuppress, obs.CIngressBatch,
	} {
		res.FrameCounters[c.String()] = met.Get(c)
	}
	res.DeadLetters, res.DeadLettersByNode = deadLetterCensus(cluster)
	if cfg.topics > 0 {
		res.Topics, res.ZipfS = cfg.topics, cfg.zipfS
		res.TopicCounters = map[string]int64{}
		for _, c := range []obs.Counter{
			obs.CTopicSub, obs.CTopicUnsub, obs.CTopicPubRecv, obs.CTopicFanout,
			obs.CTopicDelivered, obs.CTopicRehome, obs.CTopicHandoff,
			obs.CTopicLeaseExpire, obs.CTopicPurged,
		} {
			res.TopicCounters[c.String()] = met.Get(c)
		}
	}

	if jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("\nthroughput: %d publications → %d/%d notifications (%.2f%%) in %.2fs\n",
		res.Publications, res.Delivered, res.Notifications, res.DeliveredPct, res.ElapsedSeconds)
	fmt.Printf("sustained: %.0f msgs/sec   latency p50=%.2fms p99=%.2fms   allocs/msg=%.1f (%.0f B)\n",
		res.MsgsPerSec, res.LatencyP50MS, res.LatencyP99MS, res.AllocsPerMsg, res.BytesPerMsg)
	fmt.Printf("frames/delivered-msg: %.2f   (ack batches %d, acks coalesced %d, heartbeats suppressed %d)\n",
		res.FramesPerDelivered, res.FrameCounters["ack_batch_sent"],
		res.FrameCounters["ack_coalesced"], res.FrameCounters["heartbeat_suppressed"])
	if res.DeadLetters > 0 {
		fmt.Printf("dead letters: %d across %d publisher nodes\n", res.DeadLetters, len(res.DeadLettersByNode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "livebench:", err)
	os.Exit(2)
}
