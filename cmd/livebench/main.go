// Command livebench runs the "realistic experiment" end to end on live
// peers: it builds a SELECT overlay, starts one goroutine per peer on an
// in-memory transport with netmodel-emulated pairwise latency (or real TCP
// loopback sockets with -tcp), drives the exponential posting workload,
// and reports delivery latency percentiles, hop distribution and delivery
// completeness.
//
//	livebench -n 300 -posts 100
//	livebench -n 100 -posts 40 -tcp
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/metrics"
	"selectps/internal/netmodel"
	"selectps/internal/node"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/transport"
)

func main() {
	var (
		n       = flag.Int("n", 300, "number of live peers")
		posts   = flag.Int("posts", 100, "publications to drive")
		name    = flag.String("dataset", "facebook", "data set shape")
		seed    = flag.Int64("seed", 1, "seed")
		useTCP  = flag.Bool("tcp", false, "real TCP loopback sockets instead of in-memory transport")
		timeout = flag.Duration("timeout", 10*time.Second, "per-publication delivery timeout")
	)
	flag.Parse()

	spec, err := datasets.ByName(*name)
	if err != nil {
		fatal(err)
	}
	g := spec.Generate(*n, *seed)
	net := netmodel.New(*n, netmodel.Config{}, rand.New(rand.NewSource(*seed+1)))
	bw := make([]float64, *n)
	for i := range bw {
		bw[i] = net.Upload(overlay.PeerID(i))
	}
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}

	var tr transport.Transport
	if *useTCP {
		t, err := transport.NewTCP(*n, 4096)
		if err != nil {
			fatal(err)
		}
		tr = t
	} else {
		sw := transport.NewSwitchboard(*n, 4096)
		sw.Latency = func(from, to int32) time.Duration {
			// Emulated propagation latency, scaled down 10x so runs finish
			// quickly while preserving relative differences.
			return time.Duration(net.Latency(from, to) * float64(time.Second) / 10)
		}
		tr = sw
	}
	cluster, err := node.Start(node.Options{
		Graph: g, Overlay: ov, Transport: tr, Seed: *seed,
		HeartbeatEvery: 200 * time.Millisecond,
		GossipEvery:    200 * time.Millisecond,
		MaintainEvery:  200 * time.Millisecond,
		Bandwidths:     bw,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		cluster.Shutdown(ctx)
	}()
	kind := "in-memory+latency"
	if *useTCP {
		kind = "tcp"
	}
	fmt.Printf("live cluster: %d peers (%s transport), %s graph, %d friendships\n",
		*n, kind, spec.Name, g.NumEdges())

	w := pubsub.NewWorkload(g, 10, rand.New(rand.NewSource(*seed+2)))
	var latencies []float64
	hops := metrics.NewHistogram(0, 16, 16)
	done, wanted, delivered := 0, 0, 0
	for tick := 0; done < *posts; tick++ {
		for _, b := range w.PostersUntil(float64(tick), 1) {
			if g.Degree(b) == 0 {
				continue
			}
			subs := g.Neighbors(b)
			start := time.Now()
			seq := cluster.Nodes[b].PublishSize(1_200_000)
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			got, _ := cluster.AwaitDelivery(ctx, b, seq, subs)
			cancel()
			latencies = append(latencies, time.Since(start).Seconds())
			wanted += len(subs)
			delivered += got
			for _, s := range subs {
				if h, ok := cluster.Nodes[s].Received(b, seq); ok {
					hops.Add(float64(h))
				}
			}
			done++
			if done >= *posts {
				break
			}
		}
	}

	fmt.Printf("\npublications: %d   notifications delivered: %d/%d (%.2f%%)\n",
		done, delivered, wanted, 100*float64(delivered)/float64(wanted))
	fmt.Printf("delivery wall-clock per publication: p50=%.1fms p90=%.1fms p99=%.1fms\n",
		metrics.Quantile(latencies, 0.5)*1000,
		metrics.Quantile(latencies, 0.9)*1000,
		metrics.Quantile(latencies, 0.99)*1000)
	fmt.Println("hop distribution of deliveries:")
	fr := hops.Fractions()
	for h, f := range fr {
		if f > 0.001 {
			fmt.Printf("  %2d hops: %5.1f%%\n", h, f*100)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "livebench:", err)
	os.Exit(2)
}
