// Command soak runs the live availability soak (the live counterpart of
// the paper's Fig. 6): a cluster of node goroutines on a fault-injected
// transport, driven through a seeded churn + publication workload, with
// delivery rate, duplicate rate, latency/hop distributions and CMA
// recovery actions reported at the end.
//
// The entire failure schedule is a pure function of -seed: re-running
// with the same flags replays the exact same crashes, partitions and
// per-link loss decisions (print it with -trace).
//
//	soak -n 200 -posts 50 -drop 0.1 -churn
//	soak -n 100 -posts 20 -drop 0.2 -compare      # recovery on vs off
//	soak -n 60 -posts 10 -tcp -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"selectps/internal/churn"
	"selectps/internal/faultnet"
	"selectps/internal/soak"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of live peers")
		posts   = flag.Int("posts", 20, "publications to drive")
		seed    = flag.Int64("seed", 1, "seed for graph, workload and fault schedule")
		dataset = flag.String("dataset", "facebook", "social graph shape")
		useTCP  = flag.Bool("tcp", false, "real TCP loopback sockets instead of the in-memory switchboard")

		drop    = flag.Float64("drop", 0.10, "per-link message drop probability")
		dup     = flag.Float64("dup", 0.02, "per-link duplication probability")
		reorder = flag.Float64("reorder", 0.02, "per-link reorder probability")
		delay   = flag.Duration("delay-max", 2*time.Millisecond, "max injected per-message delay (0 disables)")

		churnOn  = flag.Bool("churn", false, "crash/restart peers from the log-normal session model")
		partEach = flag.Int("partition-every", 0, "schedule a partition every N steps (0 disables)")
		partFor  = flag.Int("partition-for", 50, "partition duration in steps")
		partFrac = flag.Float64("partition-frac", 0.2, "fraction of peers cut off per partition")
		tick     = flag.Duration("tick", 20*time.Millisecond, "real-time duration of one schedule step")
		steps    = flag.Int("steps", 3000, "schedule horizon in steps")

		recovery = flag.Bool("recovery", true, "CMA heartbeats + publisher retries (the Fig. 6 mechanism)")
		timeout  = flag.Duration("timeout", 3*time.Second, "per-publication delivery deadline")

		bootFrac   = flag.Float64("bootstrap-frac", 0, "fraction of peers bootstrapped from the converged overlay; the rest join live (0 or 1 = everyone)")
		liveRejoin = flag.Bool("live-rejoin", false, "churn crashes destroy overlay state; peers re-join through the live join protocol")
		postPosts  = flag.Int("post-churn-posts", 0, "extra publications measured after the fault schedule ends (overlay-quality convergence)")

		offlineFrac = flag.Float64("offline-frac", 0, "fraction of peers offline for the whole workload; they rejoin at the end and are scored on inbox replay")
		inboxOn     = flag.Bool("inbox", false, "durable delivery tier: deposit publications for offline subscribers on their inbox replicas")

		topics    = flag.Int("topics", 0, "flash-crowd arm: publish to this many Zipf-popular named topics instead of friend feeds (0 disables)")
		topicZipf = flag.Float64("topic-zipf", 1.2, "Zipf exponent for topic popularity (topic 0 is the hot hashtag)")
		topicSubs = flag.Int("topic-subs", 2, "topic subscriptions per peer")
		assertAll = flag.Bool("assert-all", false, "exit 1 unless every subscriber (offline included) was delivered with zero dead letters and zero duplicate app deliveries")

		attack       = flag.String("attack", "none", "adversarial arm: none, sybil, eclipse or liar")
		attackFrac   = flag.Float64("attack-frac", 0.05, "fraction of peers recruited as attackers")
		attackFrom   = flag.Int("attack-from", 0, "step the attack window opens (0 = Steps/4)")
		attackFor    = flag.Int("attack-for", 0, "attack window length in steps (0 = Steps/2)")
		attackTarget = flag.Int("attack-target", -1, "victim peer (-1 = drawn from the seed)")
		defenses     = flag.Bool("defenses", true, "hardened nodes: admission rate limits, arc caps, position cross-checks, strength clamps")
		minAvail     = flag.Float64("min-avail", 0, "exit 1 if eligible availability falls below this fraction (CI floor; 0 disables)")

		compare    = flag.Bool("compare", false, "run recovery on AND off over the same fault schedule")
		asJSON     = flag.Bool("json", false, "emit the obs snapshot as JSON")
		reportJSON = flag.Bool("report-json", false, "emit the full report as JSON (for bench assembly)")
		trace      = flag.Bool("trace", false, "print the injected fault schedule")
		traceCap   = flag.Int("trace-cap", 0, "retain the last N structured obs events (0 disables)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := soak.Config{
		N: *n, Seed: *seed, Dataset: *dataset, TCP: *useTCP,
		Posts: *posts, PayloadSize: 1_200_000,
		Fault: faultnet.Config{
			DropProb: *drop, DupProb: *dup, ReorderProb: *reorder,
			DelayMax: *delay,
			Tick:     *tick, Steps: *steps,
			PartitionEvery: *partEach, PartitionFor: *partFor, PartitionFrac: *partFrac,
		},
		Recovery:       *recovery,
		HeartbeatEvery: 25 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		MaintainEvery:  25 * time.Millisecond,
		RetryEvery:     20 * time.Millisecond,
		DeliverTimeout: *timeout,
		TraceCap:       *traceCap,
		BootstrapFrac:  *bootFrac,
		LiveRejoin:     *liveRejoin,
		PostChurnPosts: *postPosts,
		OfflineFrac:    *offlineFrac,
		Inbox:          *inboxOn,
		Topics:         *topics,
		TopicZipf:      *topicZipf,
		TopicSubs:      *topicSubs,
	}
	if *churnOn {
		m := churn.DefaultModel()
		cfg.Fault.Churn = &m
	}
	kind, ok := faultnet.ParseAttack(*attack)
	if !ok {
		fatal(fmt.Errorf("unknown -attack %q (want none, sybil, eclipse or liar)", *attack))
	}
	if kind != faultnet.AttackNone {
		cfg.Fault.Attack = kind
		cfg.Fault.AttackFrac = *attackFrac
		cfg.Fault.AttackFrom = *attackFrom
		cfg.Fault.AttackFor = *attackFor
		cfg.Fault.AttackTarget = int32(*attackTarget)
		cfg.Defenses = *defenses
		if cfg.PostChurnPosts == 0 {
			// The attack report needs the post-window recovery phase: keep
			// the run alive past EvAttackStop and measure what the overlay
			// converged back to.
			cfg.PostChurnPosts = 5
		}
	}
	if cfg.Fault.Churn == nil && *partEach == 0 && kind == faultnet.AttackNone {
		// No timed faults requested: skip schedule generation entirely.
		cfg.Fault.Tick, cfg.Fault.Steps = 0, 0
	}

	if *compare {
		on := run(cfg)
		off := cfg
		off.Recovery = false
		offR := run(off)
		fmt.Printf("=== recovery ON ===\n%s\n=== recovery OFF (same fault schedule) ===\n%s\n", on, offR)
		fmt.Printf("availability: %.2f%% with recovery vs %.2f%% without (Δ %.2f points)\n",
			100*on.DeliveryRate, 100*offR.DeliveryRate, 100*(on.DeliveryRate-offR.DeliveryRate))
		return
	}

	r := run(cfg)
	if *reportJSON {
		raw, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", raw)
	} else {
		fmt.Print(r)
	}
	if *trace && r.FaultTrace != "" {
		fmt.Printf("\n--- injected fault schedule ---\n%s", r.FaultTrace)
	}
	if *asJSON {
		raw, err := r.Obs.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s\n", raw)
	}
	if *assertAll {
		// CI gate for the durable tier: at-least-once to EVERY subscriber
		// (offline ones scored after rejoin replay), nothing dead-lettered,
		// nothing double-delivered to the app.
		ok := true
		if r.OfflineCount > 0 && r.AllRate < 1 {
			fmt.Fprintf(os.Stderr, "soak: all-subscriber delivery %.4f < 1.0\n", r.AllRate)
			ok = false
		}
		if r.OfflineCount == 0 && r.DeliveryRate < 1 {
			fmt.Fprintf(os.Stderr, "soak: delivery rate %.4f < 1.0\n", r.DeliveryRate)
			ok = false
		}
		if r.DeadLetters != 0 {
			fmt.Fprintf(os.Stderr, "soak: %d dead letters\n", r.DeadLetters)
			ok = false
		}
		if r.DuplicateDeliveries != 0 {
			fmt.Fprintf(os.Stderr, "soak: %d duplicate app deliveries\n", r.DuplicateDeliveries)
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
	}
	if *minAvail > 0 && r.DeliveryRate < *minAvail {
		fmt.Fprintf(os.Stderr, "soak: eligible availability %.4f < floor %.4f\n", r.DeliveryRate, *minAvail)
		os.Exit(1)
	}
}

func run(cfg soak.Config) *soak.Report {
	r, err := soak.Run(cfg)
	if err != nil {
		fatal(err)
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soak:", err)
	os.Exit(2)
}
